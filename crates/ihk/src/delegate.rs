//! System-call delegation: the LWK forwards a syscall over IKC, the proxy
//! process executes it on one of the few Linux service cores, and the
//! result travels back. This is the mechanism whose cost — especially the
//! *contention* on 4 Linux CPUs serving up to 64 ranks — PicoDriver
//! removes from the fast path.

use crate::ikc::IkcConfig;
use crate::syscall::Sysno;
use pico_sim::{Ns, ServerPool, TimeByKey};

/// The outcome of one offloaded call, fully scheduled at submission time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OffloadGrant {
    /// When the request reaches Linux and is runnable.
    pub arrive: Ns,
    /// When a Linux service core starts executing it.
    pub start: Ns,
    /// When execution finishes on Linux.
    pub linux_done: Ns,
    /// When the reply is visible on the LWK (the caller resumes here).
    pub complete: Ns,
}

impl OffloadGrant {
    /// Queueing delay attributable purely to service-core contention.
    pub fn queue_wait(&self) -> Ns {
        self.start - self.arrive
    }
}

/// The delegation engine for one node: an IKC latency model in front of a
/// FIFO pool of Linux service cores.
pub struct Delegator {
    cfg: IkcConfig,
    pool: ServerPool,
    per_call: TimeByKey<Sysno>,
    offloaded: u64,
}

impl Delegator {
    /// A delegator served by `service_cores` Linux CPUs.
    pub fn new(cfg: IkcConfig, service_cores: usize) -> Delegator {
        Delegator {
            cfg,
            pool: ServerPool::new(service_cores),
            per_call: TimeByKey::new(),
            offloaded: 0,
        }
    }

    /// Number of Linux service cores.
    pub fn service_cores(&self) -> usize {
        self.pool.servers()
    }

    /// Offload a call issued at `now` whose Linux-side handling takes
    /// `service`. The service core is additionally occupied for the
    /// proxy overhead (context switches, cache pollution, reply).
    /// Returns the complete schedule.
    pub fn offload(&mut self, now: Ns, sysno: Sysno, service: Ns) -> OffloadGrant {
        let arrive = now + self.cfg.one_way + self.cfg.proxy_dispatch;
        // Context-switch thrash: the longer the backlog at the service
        // pool, the more proxies are being juggled per core and the more
        // cache/TLB state each call has to rebuild.
        let backlog = self.pool.would_start(arrive).saturating_sub(arrive);
        let thrash = Ns((backlog.0 / self.cfg.thrash_div.max(1)).min(self.cfg.thrash_cap.0));
        let grant = self
            .pool
            .submit(arrive, service + self.cfg.proxy_service + thrash);
        let complete = grant.finish + self.cfg.one_way;
        self.offloaded += 1;
        self.per_call.record(sysno, complete - now);
        OffloadGrant {
            arrive,
            start: grant.start,
            linux_done: grant.finish,
            complete,
        }
    }

    /// Schedule non-syscall service work (e.g. an SDMA completion IRQ
    /// handler) on the same Linux service cores: IRQ load contends with
    /// offloaded system calls for the few Linux CPUs.
    pub fn service(&mut self, now: Ns, work: Ns) -> pico_sim::Grant {
        self.pool.submit(now, work)
    }

    /// Total calls offloaded.
    pub fn offloaded(&self) -> u64 {
        self.offloaded
    }

    /// Cumulative wall time per offloaded syscall (includes queueing).
    pub fn per_call_stats(&self) -> &TimeByKey<Sysno> {
        &self.per_call
    }

    /// Total queueing delay suffered at the service pool.
    pub fn total_queue_wait(&self) -> Ns {
        self.pool.total_wait()
    }

    /// Busy time of the Linux service cores.
    pub fn service_busy(&self) -> Ns {
        self.pool.busy_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delegator(cores: usize) -> Delegator {
        Delegator::new(
            IkcConfig {
                one_way: Ns(1000),
                proxy_dispatch: Ns(500),
                proxy_service: Ns::ZERO,
                thrash_div: 4,
                thrash_cap: Ns::ZERO,
            },
            cores,
        )
    }

    #[test]
    fn uncontended_offload_is_round_trip_plus_service() {
        let mut d = delegator(4);
        let g = d.offload(Ns(0), Sysno::Writev, Ns(2000));
        assert_eq!(g.arrive, Ns(1500));
        assert_eq!(g.start, Ns(1500));
        assert_eq!(g.linux_done, Ns(3500));
        assert_eq!(g.complete, Ns(4500));
        assert_eq!(g.queue_wait(), Ns::ZERO);
    }

    #[test]
    fn contention_on_few_cores_amplifies_cost() {
        // The paper's central effect: 64 ranks, 4 service cores.
        let mut d = delegator(4);
        let mut last = Ns::ZERO;
        for _ in 0..64 {
            let g = d.offload(Ns(0), Sysno::Ioctl, Ns(10_000));
            last = last.max(g.complete);
        }
        // 64 jobs of 10 µs on 4 cores: the last waits ~15 service slots.
        let uncontended = Ns(1500 + 10_000 + 1000);
        assert!(
            last >= uncontended * 10,
            "contention should dominate: {last}"
        );
        assert!(d.total_queue_wait() > Ns::ZERO);
        // With 64 cores the same load is uncontended.
        let mut wide = delegator(64);
        let mut last_wide = Ns::ZERO;
        for _ in 0..64 {
            let g = wide.offload(Ns(0), Sysno::Ioctl, Ns(10_000));
            last_wide = last_wide.max(g.complete);
        }
        assert_eq!(last_wide, uncontended);
        assert_eq!(wide.total_queue_wait(), Ns::ZERO);
    }

    #[test]
    fn stats_accumulate_per_syscall() {
        let mut d = delegator(2);
        d.offload(Ns(0), Sysno::Writev, Ns(100));
        d.offload(Ns(0), Sysno::Writev, Ns(100));
        d.offload(Ns(0), Sysno::Mmap, Ns(100));
        assert_eq!(d.offloaded(), 3);
        let (count, total) = d.per_call_stats().get(&Sysno::Writev);
        assert_eq!(count, 2);
        assert!(total > Ns::ZERO);
        assert_eq!(d.per_call_stats().get(&Sysno::Mmap).0, 1);
        assert_eq!(d.service_busy(), Ns(300));
    }
}

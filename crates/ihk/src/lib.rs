//! # pico-ihk — Interface for Heterogeneous Kernels
//!
//! The substrate that lets a lightweight kernel run next to Linux:
//!
//! * [`partition`] — dynamic CPU-core and physical-memory partitioning
//!   (the paper's 4 Linux + 64 LWK cores per KNL node);
//! * [`ikc`] — the latency-modelled inter-kernel message channel;
//! * [`delegate`] — system-call delegation: IKC round trip plus a FIFO
//!   queue on the few Linux service cores, whose contention under
//!   many-rank SDMA/ioctl load is the bottleneck PicoDriver attacks;
//! * [`proxy`] — the Linux proxy process paired with every LWK process;
//! * [`syscall`] — shared syscall numbers and routing classification.

#![warn(missing_docs)]

pub mod delegate;
pub mod ikc;
pub mod partition;
pub mod proxy;
pub mod syscall;

pub use delegate::{Delegator, OffloadGrant};
pub use ikc::{IkcChannel, IkcConfig};
pub use partition::{CoreId, CpuPartition, MemPartition, PartitionError};
pub use proxy::{LinuxPid, LwkPid, ProxyProcess, ProxyRegistry};
pub use syscall::{SyscallRoute, Sysno};

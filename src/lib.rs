//! # picodriver-suite
//!
//! Umbrella crate for the reproduction of *PicoDriver: Fast-path Device
//! Drivers for Multi-kernel Operating Systems* (HPDC'18). Re-exports the
//! workspace crates so the examples and integration tests exercise the
//! public API exactly as a downstream user would.
//!
//! Start at [`picodriver`] (the paper's contribution) and
//! [`pico_cluster`] (the experiment runner); see `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for paper-vs-measured results.

pub use pico_apps as apps;
pub use pico_cluster as cluster;
pub use pico_dwarf as dwarf;
pub use pico_fabric as fabric;
pub use pico_hfi1 as hfi1;
pub use pico_ihk as ihk;
pub use pico_linux as linux;
pub use pico_mckernel as mckernel;
pub use pico_mem as mem;
pub use pico_mpi as mpi;
pub use pico_psm as psm;
pub use pico_sim as sim;
pub use picodriver as core;
